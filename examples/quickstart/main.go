// Quickstart: build a two-node 802.11b ad-hoc link, saturate it for three
// virtual seconds and print what the MAC achieved. This is the smallest
// useful program against the public API.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
)

func main() {
	// Everything about the run is determined by this config (seed included):
	// run it twice and you get identical numbers.
	net := core.NewNetwork(core.Config{
		Seed: 42,
		Mode: "802.11b",
	})

	// Two ad-hoc stations ten metres apart.
	alice := net.AddAdhoc("alice", geom.Pt(0, 0))
	bob := net.AddAdhoc("bob", geom.Pt(10, 0))

	// A backlogged flow of 1500-byte payloads from alice to bob.
	flow := net.Saturate(alice, bob, 1500)

	net.Run(3 * sim.Second)

	fs := net.FlowStats(flow)
	st := alice.MAC.Stats()
	fmt.Printf("delivered:   %d packets\n", fs.Received)
	fmt.Printf("goodput:     %.2f Mbit/s (line rate 11 Mbit/s)\n", net.FlowThroughput(flow)/1e6)
	fmt.Printf("mean delay:  %.2f ms\n", fs.Latency.Mean()*1000)
	fmt.Printf("MAC retries: %d, drops: %d\n", st.Retries, st.MSDUDropped)
}
