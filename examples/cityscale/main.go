// Cityscale: the E-family in miniature. A 600-radio district runs on the
// medium's uniform-grid spatial index (fan-out walks only the cells within
// detection range, so event cost stays near-linear in radio count), then a
// station cohort rides a multi-AP ESS corridor built with AddESS and hands
// off twice without losing its uplink. These are experiments E1 and E2 as
// a narrative; run the full grids with `go run ./cmd/experiments -experiment E1`.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/net80211"
	"repro/internal/sim"
)

func main() {
	// --- E1 in miniature: a dense district ------------------------------
	const n = 600
	net := core.NewNetwork(core.Config{Seed: 11, TxPower: 2}) // low power: local cells
	pts := geom.Grid(n, 15, geom.Pt(0, 0))
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = net.AddAdhoc(fmt.Sprintf("n%d", i), pts[i])
	}
	var flows []uint32
	for i := 0; i+1 < n; i += 2 {
		flows = append(flows, net.Poisson(nodes[i], nodes[i+1], 200, 4))
	}
	net.Run(1 * sim.Second)

	var received uint64
	for _, f := range flows {
		if fs := net.FlowStats(f); fs != nil {
			received += fs.Received
		}
	}
	fmt.Printf("district: %d radios, %d kernel events/vs, %d transmissions, %d delivered\n",
		n, net.Kernel().Processed(), net.Medium().Transmissions, received)

	// --- E2 in miniature: an ESS corridor -------------------------------
	city := core.NewNetwork(core.Config{Seed: 12})
	ess, aps := city.AddESS("corridor",
		[]geom.Point{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(160, 0)},
		net80211.APConfig{})
	sta := city.AddMobileStation("commuter",
		geom.Linear{Start: geom.Pt(5, 0), Velocity: geom.Vector{X: 12}},
		net80211.STAConfig{SSID: "corridor", RoamThreshold: -65, RoamHysteresis: 6})
	flow := city.CBR(sta, aps[0], 300, 100*sim.Millisecond)
	city.Run(15 * sim.Second)

	fs := city.FlowStats(flow)
	fmt.Printf("corridor: %d roams, %d stale associations dropped by DS handoff\n",
		sta.STA.Stats.Roams, ess.Handoffs())
	serving := ess.ServingAP(sta.Address())
	for _, ap := range aps {
		if ap.AP == serving {
			fmt.Printf("commuter ends on %s", ap.Name)
			if fs != nil {
				fmt.Printf(" with %.1f%% uplink delivery", 100*(1-fs.LossRatio()))
			}
			fmt.Println()
		}
	}
}
