// Roaming: a station walks through a two-AP extended service set connected
// by a wired distribution system, hands off mid-walk, and its uplink flow
// survives. This is experiment F10 as a narrative.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/net80211"
	"repro/internal/sim"
)

func main() {
	net := core.NewNetwork(core.Config{Seed: 5})

	ap1 := net.AddAP("ap1", geom.Pt(0, 0), net80211.APConfig{SSID: "campus"})
	ap2 := net.AddAP("ap2", geom.Pt(120, 0), net80211.APConfig{SSID: "campus"})
	net.ConnectDS(ap1)
	net.ConnectDS(ap2)

	// The station walks from AP1's lap to AP2's at 10 m/s.
	sta := net.AddMobileStation("walker",
		geom.Linear{Start: geom.Pt(5, 0), Velocity: geom.Vector{X: 10}},
		net80211.STAConfig{SSID: "campus", RoamThreshold: -65, RoamHysteresis: 6})

	// Narrate associations as they happen.
	sta.STA.OnAssociated = func(bssid frame.MACAddr) {
		which := "ap1"
		if bssid == ap2.AP.BSSID() {
			which = "ap2"
		}
		fmt.Printf("%8v  associated to %s (%v)\n", net.Kernel().Now(), which, bssid)
	}

	// Uplink CBR to a server reachable through AP1 (i.e. AP1 itself here).
	flow := net.CBR(sta, ap1, 300, 20*sim.Millisecond)

	net.Run(11 * sim.Second)

	fs := net.FlowStats(flow)
	fmt.Printf("\nwalk finished at x=%.0f m\n", sta.Radio.Position().X)
	fmt.Printf("roams: %d, link losses: %d\n", sta.STA.Stats.Roams, sta.STA.Stats.LinkLosses)
	if fs != nil {
		fmt.Printf("uplink delivery: %.1f%% (max outage %.0f ms)\n",
			100*(1-fs.LossRatio()), fs.MaxGap.Seconds()*1000)
	}
	fmt.Printf("ap2 forwarded %d frames onto the wired DS after the handoff\n",
		ap2.AP.Stats.ToDS)
}
