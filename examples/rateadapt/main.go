// Rate adaptation: a station walks away from its peer over a fading
// 802.11a channel while different driver policies pick transmission rates.
// Watch fixed-rate fall off a cliff while Minstrel degrades gracefully.
// This is experiment F4 with a moving station instead of a distance sweep.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/units"
)

func run(policy string) []float64 {
	net := core.NewNetwork(core.Config{
		Seed:      99,
		Mode:      "802.11a",
		RateAdapt: policy,
		Fading:    "rayleigh",
		PathLoss:  spectrum.NewLogDistance(5200*units.MHz, 3.0),
	})
	base := net.AddAdhoc("base", geom.Pt(0, 0))

	// The walker starts 10 m out and retreats at 10 m/s for 9 seconds.
	walker := net.AddAdhoc("walker", geom.Pt(10, 0))
	walker.Radio.SetMobility(geom.Linear{Start: geom.Pt(10, 0), Velocity: geom.Vector{X: 10}})

	flow := net.Saturate(walker, base, 1200)

	// Sample goodput every second.
	var samples []float64
	var lastBytes uint64
	for s := 0; s < 9; s++ {
		net.Run(1 * sim.Second)
		fs := net.FlowStats(flow)
		var bytes uint64
		if fs != nil {
			bytes = fs.Bytes
		}
		samples = append(samples, float64(bytes-lastBytes)*8/1e6)
		lastBytes = bytes
	}
	return samples
}

func main() {
	policies := []string{"fixed", "arf", "minstrel"}
	fmt.Println("goodput (Mbit/s) per second while walking 10 → 100 m, 802.11a + Rayleigh")
	fmt.Printf("%-10s", "distance:")
	for s := 0; s < 9; s++ {
		fmt.Printf("%7dm", 15+s*10)
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-10s", p)
		for _, v := range run(p) {
			fmt.Printf("%8.2f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nfixed stays at 54 Mbit/s until frames stop decoding; the adaptive")
	fmt.Println("drivers shift down the OFDM ladder and keep the link alive.")
}
