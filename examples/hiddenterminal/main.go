// Hidden terminal: two senders that cannot carrier-sense each other share a
// receiver. Run once with basic access and once with RTS/CTS to watch the
// classic collapse and recovery. This is experiment F3 in miniature.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/units"
)

// hiddenChannel returns a channel where a↔c is a 200 dB void while both
// reach b at a comfortable 70 dB.
func hiddenChannel() spectrum.PathLoss {
	names := map[geom.Point]string{
		geom.Pt(-25, 0): "a",
		geom.Pt(0, 0):   "b",
		geom.Pt(25, 0):  "c",
	}
	return spectrum.MatrixLoss{
		Default: 70,
		Pairs: map[string]units.DB{
			spectrum.PairKey("a", "c"): 200,
			spectrum.PairKey("c", "a"): 200,
		},
		Resolver: func(p geom.Point) string { return names[p] },
	}
}

func run(useRTS bool) (agg float64, retries, drops uint64) {
	cfg := core.Config{
		Seed:      7,
		PathLoss:  hiddenChannel(),
		RateAdapt: "fixed:1", // 2 Mbit/s: long frames make collisions expensive
	}
	if useRTS {
		cfg.RTSThreshold = 1 // protect everything
	}
	net := core.NewNetwork(cfg)
	b := net.AddAdhoc("b", geom.Pt(0, 0))
	a := net.AddAdhoc("a", geom.Pt(-25, 0))
	c := net.AddAdhoc("c", geom.Pt(25, 0))
	fa := net.Saturate(a, b, 1500)
	fc := net.Saturate(c, b, 1500)
	net.Run(5 * sim.Second)

	agg = net.FlowThroughput(fa) + net.FlowThroughput(fc)
	retries = a.MAC.Stats().Retries + c.MAC.Stats().Retries
	drops = a.MAC.Stats().MSDUDropped + c.MAC.Stats().MSDUDropped
	return agg, retries, drops
}

func main() {
	fmt.Println("two hidden senders, one receiver, 1500B @ 2 Mbit/s, 5s")
	basic, bRetries, bDrops := run(false)
	fmt.Printf("basic access: %.2f Mbit/s  (%d retries, %d drops)\n",
		basic/1e6, bRetries, bDrops)
	rts, rRetries, rDrops := run(true)
	fmt.Printf("rts/cts:      %.2f Mbit/s  (%d retries, %d drops)\n",
		rts/1e6, rRetries, rDrops)
	fmt.Printf("\nRTS/CTS recovers %.1fx the goodput: collisions now burn a 272 µs RTS\n",
		rts/basic)
	fmt.Println("instead of a 6.3 ms data frame, and the CTS sets the hidden sender's NAV.")
}
