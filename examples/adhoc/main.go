// Ad hoc mesh: eight IBSS stations in a ring exchange unicast traffic with
// their neighbours while one of them floods periodic broadcasts — the
// "small group of devices in close proximity" scenario the survey text
// describes for ad-hoc mode.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	net := core.NewNetwork(core.Config{Seed: 3, Mode: "802.11g", RateAdapt: "minstrel"})

	const n = 8
	pts := geom.Circle(n, 20, geom.Pt(0, 0))
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = net.AddAdhoc(fmt.Sprintf("node%d", i), pts[i])
	}

	// Each node streams CBR to its clockwise neighbour.
	flows := make([]uint32, n)
	for i := range nodes {
		flows[i] = net.CBR(nodes[i], nodes[(i+1)%n], 800, 8*sim.Millisecond)
	}
	// Node 0 also broadcasts a beacon-ish announcement every 100 ms.
	bcast := net.Broadcast(nodes[0], 100, 100*sim.Millisecond)

	net.Run(5 * sim.Second)

	table := stats.NewTable("ad-hoc ring: 8 nodes, 800B CBR to the next neighbour, 5s",
		"flow", "Mbit/s", "delivery %", "mean delay ms")
	var per []float64
	for i, id := range flows {
		fs := net.FlowStats(id)
		tput := net.FlowThroughput(id)
		per = append(per, tput)
		table.AddRow(fmt.Sprintf("%d→%d", i, (i+1)%n), stats.Mbps(tput),
			stats.F(100*(1-fs.LossRatio()), 1), stats.F(fs.Latency.Mean()*1000, 2))
	}
	fmt.Println(table.Render())
	fmt.Printf("ring fairness (Jain): %s\n", stats.F(stats.JainIndex(per), 4))
	if fs := net.FlowStats(bcast); fs != nil {
		fmt.Printf("broadcasts heard (across all nodes): %d\n", fs.Received+fs.Duplicates)
	}
}
