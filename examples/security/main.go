// Security: the three generations the survey text walks through, made
// executable. A WEP BSS is joined via shared-key authentication, then the
// classic CRC bit-flip forgery is demonstrated against WEP and repelled by
// CCMP (the WPA2 mandatory cipher). This is experiment S1 as a story.
package main

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/net80211"
	"repro/internal/sim"
	"repro/internal/wep"
)

func main() {
	// Part 1: shared-key auth + WEP-sealed data over the air.
	key := wep.Key{0xde, 0xad, 0xbe, 0xef, 0x42}
	net := core.NewNetwork(core.Config{Seed: 8})
	ap := net.AddAP("ap", geom.Pt(0, 0), net80211.APConfig{SSID: "secure", WEPKey: key})
	sta := net.AddStation("sta", geom.Pt(10, 0), net80211.STAConfig{SSID: "secure", WEPKey: key})

	var delivered []byte
	ap.AP.OnDeliver = func(_, _ frame.MACAddr, payload []byte) { delivered = payload }
	net.Kernel().Ticker(100*sim.Millisecond, "send", func() {
		if sta.STA.Associated() && delivered == nil {
			sta.STA.Send(ap.AP.BSSID(), []byte("over-the-air, WEP sealed"))
		}
	})
	net.Run(2 * sim.Second)
	fmt.Println("— part 1: WEP BSS —")
	fmt.Printf("shared-key auths at AP: %d ok, %d failed\n",
		ap.AP.Stats.AuthOK, ap.AP.Stats.AuthFail)
	fmt.Printf("payload decrypted by AP: %q\n\n", delivered)

	// Part 2: the bit-flip forgery. The attacker knows the plaintext
	// layout and wants to change the amount — without the key.
	fmt.Println("— part 2: WEP integrity forgery —")
	plain := []byte("TRANSFER   10 EUR")
	target := []byte("TRANSFER 9910 EUR")
	sealed, _ := wep.Seal(key, wep.IV{1, 2, 3}, 0, plain)
	mask := make([]byte, len(plain))
	for i := range plain {
		mask[i] = plain[i] ^ target[i]
	}
	forged, _ := wep.BitFlip(sealed, mask)
	got, err := wep.Open(key, forged)
	fmt.Printf("original:  %q\n", plain)
	fmt.Printf("forged:    %q  (ICV check: err=%v)\n", got, err)
	fmt.Printf("attack works: %v — CRC-32 is linear under XOR\n\n",
		err == nil && bytes.Equal(got, target))

	// Part 3: CCMP rejects the same manipulation and replays.
	fmt.Println("— part 3: CCMP (WPA2) —")
	tk := []byte("sixteen byte key")
	ta := [6]byte{2, 0, 0, 0, 0, 1}
	ccmp, _ := wep.SealCCMP(tk, ta, 1, nil, plain)
	flipped := append([]byte(nil), ccmp...)
	for i := range mask {
		flipped[wep.CCMPHeaderLen+i] ^= mask[i]
	}
	_, _, err = wep.OpenCCMP(tk, ta, nil, flipped, 0)
	fmt.Printf("bit-flip against CCMP: %v\n", err)
	_, _, err = wep.OpenCCMP(tk, ta, nil, ccmp, 1)
	fmt.Printf("replay against CCMP:   %v\n", err)
	fmt.Println("\nranking reproduced: CCMP (WPA2) > WEP > open — as in the survey's table")
}
